package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// BenchSchema identifies the benchmark baseline file format.
const BenchSchema = "hydra-bench-baseline/v1"

// BenchResult is one benchmark measurement parsed from `go test -bench`
// output.
type BenchResult struct {
	N           int64   `json:"n"`             // iterations run
	NsPerOp     float64 `json:"ns_per_op"`     // wall time per op
	BytesPerOp  int64   `json:"bytes_per_op"`  // -1 when not reported
	AllocsPerOp int64   `json:"allocs_per_op"` // -1 when not reported
}

// BenchEnv records the machine a baseline was measured on. Benchmark
// times only gate meaningfully against a baseline from a comparable
// environment — a number recorded on a 16-core box says nothing about a
// single-core CI runner (and the parallel-engine benchmarks literally
// measure a different code path at GOMAXPROCS 1), so comparisons check
// this and fail loudly on mismatch instead of silently drifting.
type BenchEnv struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentBenchEnv captures the running process's environment.
func CurrentBenchEnv() BenchEnv {
	return BenchEnv{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Mismatch describes why results from env e cannot be compared against
// a baseline recorded under base; it returns "" when they can.
func (e BenchEnv) Mismatch(base BenchEnv) string {
	switch {
	case e.GOOS != base.GOOS || e.GOARCH != base.GOARCH:
		return fmt.Sprintf("platform %s/%s, baseline recorded on %s/%s",
			e.GOOS, e.GOARCH, base.GOOS, base.GOARCH)
	case e.NumCPU != base.NumCPU:
		return fmt.Sprintf("%d CPUs, baseline recorded with %d", e.NumCPU, base.NumCPU)
	case e.GOMAXPROCS != base.GOMAXPROCS:
		return fmt.Sprintf("GOMAXPROCS %d, baseline recorded at %d", e.GOMAXPROCS, base.GOMAXPROCS)
	}
	return ""
}

// BenchFile is the on-disk baseline artifact: the current measurements,
// the environment they were recorded in, and, optionally, the
// measurements they were compared against when the baseline was written
// (so the file records the speedup a change delivered, not just its
// endpoint). Env is nil in baselines written before it existed; those
// compare without the environment check.
type BenchFile struct {
	Schema     string                 `json:"schema"`
	Env        *BenchEnv              `json:"env,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	Previous   map[string]BenchResult `json:"previous,omitempty"`
	Speedup    map[string]float64     `json:"speedup,omitempty"`
}

// ParseBench extracts benchmark lines from `go test -bench` output.
// Names are normalized by stripping the trailing -GOMAXPROCS suffix.
// Non-benchmark lines are ignored, so raw test output can be piped in.
func ParseBench(r io.Reader) (map[string]BenchResult, error) {
	out := make(map[string]BenchResult)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmarking..." prose
		}
		res := BenchResult{N: n, BytesPerOp: -1, AllocsPerOp: -1}
		ok := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("stats: bad benchmark value %q in %q", f[i], sc.Text())
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp = v
				ok = true
			case "B/op":
				res.BytesPerOp = int64(v)
			case "allocs/op":
				res.AllocsPerOp = int64(v)
			}
		}
		if ok {
			out[benchName(f[0])] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// benchName strips the -N GOMAXPROCS suffix go test appends.
func benchName(s string) string {
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i]
		}
	}
	return s
}

// BenchDelta is the comparison of one benchmark against its baseline.
type BenchDelta struct {
	Name      string
	Baseline  BenchResult // zero value when New
	Current   BenchResult
	Ratio     float64 // current ns/op over baseline ns/op (0 when New)
	New       bool    // present in current but absent from the baseline
	Regressed bool
	Reason    string
}

// allocSlack is the per-op allocation increase tolerated before a
// benchmark counts as regressed: 0.1% of the baseline, truncated.
// Microbenchmark counts are deterministic and small, so the slack is
// zero there — going from 0 to 1 allocs/op fails. End-to-end
// benchmarks that allocate millions of times per op (the figure
// sweeps run watchdog goroutines and timers) jitter by a handful of
// allocations between runs; the slack absorbs that without masking a
// real leak.
func allocSlack(base int64) int64 {
	return base / 1000
}

// CompareBench checks current results against a baseline. A benchmark
// regresses when its time exceeds the baseline by more than tolerance
// (e.g. 0.25 = 25%), or when it allocates more per op than the
// baseline recorded plus a 0.1% jitter slack (zero for benchmarks
// under 1000 allocs/op, where counts are deterministic). A benchmark
// present in the current run but absent from the baseline is reported
// as New and never regresses — newly added benchmarks must not force a
// hand-edited baseline. Benchmarks only in the baseline are skipped:
// the gate compares what both runs measured.
func CompareBench(baseline, current map[string]BenchResult, tolerance float64) []BenchDelta {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	deltas := make([]BenchDelta, 0, len(names))
	for _, name := range names {
		cur := current[name]
		base, inBase := baseline[name]
		if !inBase {
			deltas = append(deltas, BenchDelta{Name: name, Current: cur, New: true})
			continue
		}
		d := BenchDelta{Name: name, Baseline: base, Current: cur}
		if base.NsPerOp > 0 {
			d.Ratio = cur.NsPerOp / base.NsPerOp
		}
		switch {
		case base.NsPerOp > 0 && cur.NsPerOp > base.NsPerOp*(1+tolerance):
			d.Regressed = true
			d.Reason = fmt.Sprintf("%.1f ns/op exceeds baseline %.1f by more than %.0f%%",
				cur.NsPerOp, base.NsPerOp, tolerance*100)
		case base.AllocsPerOp >= 0 && cur.AllocsPerOp > base.AllocsPerOp+allocSlack(base.AllocsPerOp):
			d.Regressed = true
			d.Reason = fmt.Sprintf("%d allocs/op exceeds baseline %d",
				cur.AllocsPerOp, base.AllocsPerOp)
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// WriteBenchFile writes the baseline artifact, stamped with the
// current environment. When prev is non-empty the file also records
// those prior measurements and the per-benchmark speedup (prev time
// over current time).
func WriteBenchFile(path string, current, prev map[string]BenchResult) error {
	env := CurrentBenchEnv()
	f := BenchFile{Schema: BenchSchema, Env: &env, Benchmarks: current}
	if len(prev) > 0 {
		f.Previous = prev
		f.Speedup = make(map[string]float64)
		for name, p := range prev {
			if c, ok := current[name]; ok && c.NsPerOp > 0 {
				f.Speedup[name] = p.NsPerOp / c.NsPerOp
			}
		}
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchFile reads a baseline artifact written by WriteBenchFile.
func LoadBenchFile(path string) (BenchFile, error) {
	var f BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("stats: parsing %s: %w", path, err)
	}
	if f.Schema != BenchSchema {
		return f, fmt.Errorf("stats: %s has schema %q, want %q", path, f.Schema, BenchSchema)
	}
	return f, nil
}
