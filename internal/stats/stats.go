// Package stats provides the small statistical helpers the evaluation
// harness needs: geometric means over normalized performance, simple
// histograms, and percentage formatting matching the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. It returns 0 for an empty
// slice and panics if any value is non-positive, since a non-positive
// normalized performance indicates a harness bug.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SlowdownPct converts a normalized performance (1.0 = baseline) into
// the slowdown percentage the paper reports: 0.993 -> 0.7 (%).
func SlowdownPct(normPerf float64) float64 {
	return (1 - normPerf) * 100
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-
// rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Histogram is a fixed-bucket histogram over non-negative integer
// samples, used to characterize per-row activation counts.
type Histogram struct {
	// Bounds are the inclusive upper bounds of each bucket; a final
	// overflow bucket catches everything above the last bound.
	Bounds []int64
	Counts []int64
	N      int64
	Max    int64
	Sum    int64
}

// NewHistogram creates a histogram with the given bucket upper bounds,
// which must be strictly increasing.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		Bounds: append([]int64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns the mean of all recorded samples.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// CountAbove returns how many samples exceeded the given value. The
// value must be one of the configured bounds; otherwise the result is
// approximate to bucket granularity.
func (h *Histogram) CountAbove(v int64) int64 {
	var n int64
	for i, b := range h.Bounds {
		if b > v {
			n += h.Counts[i]
		}
	}
	n += h.Counts[len(h.Bounds)]
	return n
}

// String renders the histogram compactly for logs.
func (h *Histogram) String() string {
	s := ""
	prev := int64(0)
	for i, b := range h.Bounds {
		s += fmt.Sprintf("[%d..%d]:%d ", prev, b, h.Counts[i])
		prev = b + 1
	}
	s += fmt.Sprintf("[%d..]:%d", prev, h.Counts[len(h.Bounds)])
	return s
}

// Ratio returns a/b as a float, or 0 when b is zero.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
