// Package hydra is the public API of this repository: a from-scratch
// reproduction of "Hydra: Enabling Low-Overhead Mitigation of
// Row-Hammer at Ultra-Low Thresholds via Hybrid Tracking" (Qureshi,
// Rohan, Saileshwar, Nair — ISCA 2022).
//
// The package re-exports the Hydra hybrid tracker (Group-Count Table +
// Row-Count Cache + DRAM-resident Row-Count Table + RIT-ACT guards)
// together with the victim-refresh mitigation policy, so a memory-
// controller model can be protected in a few lines:
//
//	tracker := hydra.MustNew(hydra.DefaultConfig(), hydra.NullSink{})
//	refresher := hydra.NewRefresher(tracker, hydra.DefaultBlast, rowsPerBank)
//	for _, row := range activations {
//	    victims := refresher.Activate(row) // rows refreshed as mitigation
//	    ...
//	}
//
// The heavier machinery — the DDR4 memory-system simulator, the 36
// calibrated workloads, the baseline trackers (Graphene, CRA, OCPR,
// PARA, TWiCE, CAT, D-CBF), the attack suite and the per-figure
// experiment harness — lives in the internal packages and is driven by
// the binaries under cmd/ and the examples under examples/.
package hydra

import (
	"repro/internal/core"
	"repro/internal/mitigate"
	"repro/internal/rh"
)

// Row is a global DRAM row identifier.
type Row = rh.Row

// MemSink receives the tracker's DRAM metadata traffic (RCT line
// reads and writes); see rh.MemSink.
type MemSink = rh.MemSink

// NullSink discards metadata traffic (functional use only).
type NullSink = rh.NullSink

// CountingSink tallies metadata traffic.
type CountingSink = rh.CountingSink

// Config parameterizes the Hydra tracker; see core.Config.
type Config = core.Config

// Tracker is the Hydra hybrid tracker; see core.Tracker.
type Tracker = core.Tracker

// Stats is the tracker's access-distribution counters (Figure 6).
type Stats = core.Stats

// StorageBreakdown itemizes Hydra's SRAM cost (Table 4).
type StorageBreakdown = core.StorageBreakdown

// Refresher drives a tracker with the victim-refresh policy,
// feeding mitigation-induced activations back into tracking.
type Refresher = mitigate.Refresher

// DefaultBlast is the paper's blast radius (2 rows on each side).
const DefaultBlast = mitigate.DefaultBlast

// DefaultConfig returns the paper's default Hydra for the 32 GB
// baseline at T_RH = 500 (T_H = 250, T_G = 200, 32 K-entry GCT,
// 8 K-entry RCC).
func DefaultConfig() Config { return core.Default() }

// ConfigForThreshold scales the default configuration to another
// row-hammer threshold, doubling structures as the threshold halves
// (Section 6.3).
func ConfigForThreshold(trh int) Config { return core.ForThreshold(trh) }

// New creates a Hydra tracker; metadata traffic is reported to sink.
func New(cfg Config, sink MemSink) (*Tracker, error) { return core.New(cfg, sink) }

// MustNew is New for configurations known statically valid.
func MustNew(cfg Config, sink MemSink) *Tracker { return core.MustNew(cfg, sink) }

// NewRefresher wraps a tracker with the victim-refresh mitigation
// policy for a memory of the given rows-per-bank.
func NewRefresher(t *Tracker, blast, rowsPerBank int) *Refresher {
	return mitigate.NewRefresher(t, blast, rowsPerBank)
}

// Victims returns the blast-radius neighbours of an aggressor row.
func Victims(row Row, blast, rowsPerBank int) []Row {
	return mitigate.Victims(row, blast, rowsPerBank)
}
