# Convenience targets; everything below is plain go-tool invocations.

GO       ?= go
SCALE    ?= 64
BENCHOUT ?= BENCH_pr1.json

.PHONY: all build test check bench bench-json figures clean

all: build test

build:
	$(GO) build ./...

# Tier-1: the bar every PR must clear.
test:
	$(GO) build ./... && $(GO) test ./...

# Stricter pre-merge gate: static analysis plus the full test suite
# under the race detector (the campaign harness is concurrent).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -benchmem ./...

# bench-json writes the machine-readable perf trajectory artifact: a
# fast, fixed sweep (fig5 on a representative workload subset) whose
# hydra-report-file/v1 output is comparable across PRs. CI-friendly:
# exits non-zero on any failure, no interactive output needed.
# Override SCALE/BENCHOUT: `make bench-json SCALE=16 BENCHOUT=out.json`
bench-json:
	$(GO) run ./cmd/experiments -scale $(SCALE) \
		-workloads parest,bwaves,GUPS,leela -json $(BENCHOUT) fig5
	@echo "wrote $(BENCHOUT)"

# Regenerate every figure and table at the default scale.
figures:
	$(GO) run ./cmd/experiments all

clean:
	rm -f BENCH_*.json
