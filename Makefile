# Convenience targets; everything below is plain go-tool invocations.

GO       ?= go
SCALE    ?= 64
BENCHOUT ?= BENCH_pr1.json
# Baseline convention: committed baselines are numbered BENCH_<N>.json
# and append-only — a PR that shifts performance on purpose commits a
# new BENCH_<N+1>.json rather than rewriting an old one. bench-compare
# gates against the newest committed baseline by default; override
# with BASELINE=BENCH_4.json to compare against history.
BASELINE ?= $(shell git ls-files 'BENCH_*.json' | sort -V | tail -1)
# Fractional slowdown tolerated by bench-compare before it fails.
BENCHTOL ?= 0.40
# Extra benchgate flags for bench-compare. Baselines are stamped with
# the machine they were recorded on and comparisons fail loudly on a
# mismatch; a CI runner that differs from the recording machine passes
# BENCHFLAGS=-allow-env-mismatch to downgrade that to a warning.
BENCHFLAGS ?=
# Optional prior `go test -bench` text output to embed in the baseline
# (records the speedup the current tree delivers over it).
PREV     ?=

.PHONY: all build test check soak docs-lint bench bench-smoke bench-baseline bench-compare bench-json figures profile clean

all: build test

build:
	$(GO) build ./...

# Tier-1: the bar every PR must clear.
test:
	$(GO) build ./... && $(GO) test ./...

# Stricter pre-merge gate: static analysis plus the full test suite
# under the race detector (the campaign harness is concurrent), plus a
# single-iteration pass over every benchmark so a broken benchmark
# cannot sit undetected until someone runs the perf gate, plus the
# docs-lint keeping docs/TRACKERS.md in sync with internal/track.
# The suite includes the quick tier of every property-test machine
# (internal/proptest; catalog in docs/TESTING.md) — set TEST_INTENSITY
# or use `make soak` for the thorough tier. The explicit -timeout
# raises go test's 10 m per-package default: internal/exp's campaign
# tests already run minutes natively and the race detector multiplies
# that several-fold.
check: bench-smoke docs-lint
	$(GO) vet ./...
	$(GO) test -race -timeout 30m ./...

# soak runs the whole suite at the thorough test tier under the race
# detector: full crash-point coverage across all four workloads, long
# property-test loops (see internal/testutil), and 20x the generated
# cases in every proptest machine (tracker/scheduler/cache — see
# docs/TESTING.md). Slow by design; run it before merging
# storage-plane, tracker or harness changes.
soak:
	TEST_INTENSITY=thorough $(GO) test -race -timeout 30m ./...

# docs-lint fails if any exported rh.Tracker implementation in
# internal/track is not mentioned in docs/TRACKERS.md, or if the
# metric catalog in docs/METRICS.md drifts from the registered names.
docs-lint:
	$(GO) run ./cmd/trackerlint
	$(GO) run ./cmd/metriclint

bench:
	$(GO) test -bench . -benchtime 1x -benchmem ./...

# bench-smoke compiles and runs every benchmark exactly once, without
# the unit tests (-run ^$$), as a fast structural check.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > /dev/null

# bench-baseline snapshots current benchmark results into $(BASELINE).
# Pass PREV=<old bench text output> to record the prior numbers and
# per-benchmark speedups in the artifact. -p 1 runs the per-package
# test binaries serially: benchmarks must not time themselves while
# another package's benchmarks compete for the CPU.
bench-baseline:
	$(GO) test -p 1 -bench . -benchmem -run '^$$' ./... \
		| $(GO) run ./cmd/benchgate -write -out $(BASELINE) $(if $(PREV),-prev $(PREV))

# bench-compare re-runs the benchmarks (serially, like the baseline)
# and fails if any regresses beyond BENCHTOL against the committed
# baseline.
bench-compare:
	$(GO) test -p 1 -bench . -benchmem -run '^$$' ./... \
		| $(GO) run ./cmd/benchgate -compare $(BASELINE) -tolerance $(BENCHTOL) $(BENCHFLAGS)

# bench-json writes the machine-readable perf trajectory artifact: a
# fast, fixed sweep (fig5 on a representative workload subset) whose
# hydra-report-file/v1 output is comparable across PRs. CI-friendly:
# exits non-zero on any failure, no interactive output needed.
# Override SCALE/BENCHOUT: `make bench-json SCALE=16 BENCHOUT=out.json`
bench-json:
	$(GO) run ./cmd/experiments -scale $(SCALE) \
		-workloads parest,bwaves,GUPS,leela -json $(BENCHOUT) fig5
	@echo "wrote $(BENCHOUT)"

# Regenerate every figure and table at the default scale.
figures:
	$(GO) run ./cmd/experiments all

# profile captures CPU and heap profiles of the Figure 5 sweep (the
# representative hot path: four workloads x four trackers) and prints
# the top entries of each. Artifacts land in ./profiles for deeper
# `go tool pprof` sessions.
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'BenchmarkFigure5$$' -benchtime 3x \
		-cpuprofile profiles/fig5.cpu.pprof -memprofile profiles/fig5.mem.pprof \
		-o profiles/fig5.test .
	$(GO) tool pprof -top -nodecount 15 profiles/fig5.test profiles/fig5.cpu.pprof
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space profiles/fig5.test profiles/fig5.mem.pprof

# clean removes generated run artifacts but keeps the benchmark
# baselines the perf gate compares against (current and committed
# historical ones).
clean:
	rm -f $(filter-out $(shell git ls-files 'BENCH_*.json') $(BASELINE),$(wildcard BENCH_*.json))
	rm -rf profiles
