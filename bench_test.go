// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment across
// all 36 workloads and reports the same rows/series the paper plots;
// run with -v (or see EXPERIMENTS.md) for the full report text.
//
// The footprint scale is HYDRA_BENCH_SCALE (default 64: every workload
// simulates 1/64 of a 64 ms window with tracker structures scaled to
// match, preserving the paper's footprint-to-structure ratios). Use
// HYDRA_BENCH_SCALE=16 for the numbers recorded in EXPERIMENTS.md or
// 1 for a full-window run.
package hydra_test

import (
	"os"
	"strconv"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/harness"
	"repro/internal/power"
	"repro/internal/rh"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/track"
)

func benchScale() float64 {
	if v := os.Getenv("HYDRA_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 1 {
			return f
		}
	}
	return 64
}

func benchOptions() exp.Options {
	return exp.Options{Scale: benchScale()}
}

// BenchmarkTable1 regenerates the prior-tracker storage table.
func BenchmarkTable1(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Table1Text()
	}
	b.Log("\n" + out)
}

// BenchmarkTable2 renders the baseline system configuration.
func BenchmarkTable2(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Table2Text()
	}
	b.Log("\n" + out)
}

// BenchmarkTable3 measures the workload generator against the paper's
// characterization (MPKI, unique rows, hot rows, ACTs/row).
func BenchmarkTable3(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Table3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkTable4 regenerates Hydra's storage breakdown.
func BenchmarkTable4(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Table4Text()
	}
	b.Log("\n" + out)
}

// BenchmarkTable5 regenerates the DDR4-vs-DDR5 total-SRAM table.
func BenchmarkTable5(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Table5Text(500)
	}
	b.Log("\n" + out)
}

// BenchmarkFigure2 regenerates the CRA metadata-cache sweep.
func BenchmarkFigure2(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkFigure5 regenerates the headline Graphene/CRA/Hydra
// comparison over all 36 workloads.
func BenchmarkFigure5(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkFigure6 regenerates the GCT/RCC/RCT access distribution.
func BenchmarkFigure6(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkFigure7 regenerates the T_RH sensitivity study.
func BenchmarkFigure7(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkFigure8 regenerates the GCT/RCC ablation.
func BenchmarkFigure8(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkFigure9 regenerates the GCT-capacity sweep.
func BenchmarkFigure9(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkFigure10 regenerates the T_G sweep.
func BenchmarkFigure10(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkPower regenerates the Section 6.8 power analysis.
func BenchmarkPower(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Power(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkSecuritySuite runs the Section 5 attack patterns against
// Hydra and asserts the oracle sees no violation.
func BenchmarkSecuritySuite(b *testing.B) {
	geom := track.BaselineGeometry()
	cfg := attack.Config{TRH: 500, RowsPerBank: geom.RowsPerBank, ActsPerWin: 200000, Windows: 2}
	for i := 0; i < b.N; i++ {
		for _, mk := range []func() attack.Pattern{
			func() attack.Pattern { return &attack.SingleSided{Target: 100000} },
			func() attack.Pattern { return &attack.DoubleSided{Victim: 100000} },
			func() attack.Pattern { return &attack.HalfDouble{Victim: 100000} },
		} {
			hc := core.ForThreshold(500)
			tr := core.MustNew(hc, rh.NullSink{})
			if res := attack.Run(tr, mk(), cfg); !res.Safe() {
				b.Fatalf("hydra broken: %+v", res.Violations[0])
			}
		}
	}
}

// BenchmarkTrackerActivate measures the software cost of one Hydra
// activation on the common (GCT-filtered) path.
func BenchmarkTrackerActivate(b *testing.B) {
	t := core.MustNew(core.Default(), rh.NullSink{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Activate(rh.Row(uint32(i) % (4 * 1024 * 1024)))
	}
}

// BenchmarkStorageModels exercises the Table 1/5 sizing math.
func BenchmarkStorageModels(b *testing.B) {
	r := storage.PaperRank()
	for i := 0; i < b.N; i++ {
		_ = storage.Table1(r, 250, 500, 1000, 32000)
		_ = storage.Table5(500)
		_ = power.HydraSRAM()
	}
}

// BenchmarkExtensionPolicies compares the three mitigation policies in
// full system on a hot workload (the ext-policies study).
func BenchmarkExtensionPolicies(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.ExtensionPolicies(exp.Options{
			Scale:     benchScale(),
			Workloads: []string{"parest", "xz"},
		})
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkExtensionRandomized compares static vs cipher GCT indexing
// (footnote 4's ablation).
func BenchmarkExtensionRandomized(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.ExtensionRandomized(exp.Options{
			Scale:     benchScale(),
			Workloads: []string{"parest", "xz"},
		})
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}

// BenchmarkAblationRCCReplacement measures the RCC hit-rate cost of
// swapping the paper's SRRIP policy for plain LRU under a hot set that
// overflows the cache.
func BenchmarkAblationRCCReplacement(b *testing.B) {
	run := func(lru bool) float64 {
		cfg := core.Default()
		cfg.Rows = 1 << 20
		cfg.RCCEntries = 1024
		cfg.RCCUseLRU = lru
		t := core.MustNew(cfg, rh.NullSink{})
		// Saturate groups then stream a hot set 4x the RCC.
		for g := 0; g < 4096/128; g++ {
			for i := 0; i < 200; i++ {
				t.Activate(rh.Row(g * 128))
			}
		}
		for i := 0; i < 400000; i++ {
			t.Activate(rh.Row(uint32(i*7) % 4096))
		}
		s := t.Stats()
		return float64(s.RCCHit) / float64(s.RCCHit+s.RCTAccess)
	}
	for i := 0; i < b.N; i++ {
		srrip := run(false)
		lru := run(true)
		b.ReportMetric(srrip*100, "srrip-hit%")
		b.ReportMetric(lru*100, "lru-hit%")
	}
}

// campaignSweeps is a miniature `experiments all`: two figure-style
// sweeps (Figure 5's tracker comparison, Figure 8's ablation) that
// share their baseline and hydra cells, run back to back like the CLI
// runs targets. Small scale and two workloads keep one uncached pass
// around a second so the cached/uncached pair stays benchmarkable.
func campaignSweeps(b *testing.B, cache *harness.CellCache) {
	b.Helper()
	opts := exp.Options{
		Scale:     512,
		Workloads: []string{"parest", "GUPS"},
		Cache:     cache,
	}
	fig5 := []exp.Variant{
		{Name: "cra-64KB", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackCRA; c.CRACacheBytes = 64 * 1024 }},
		{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
	}
	fig8 := []exp.Variant{
		{Name: "hydra-nogct", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydraNoGCT }},
		{Name: "hydra", Mutate: func(c *sim.Config) { c.Tracker = sim.TrackHydra }},
	}
	o5 := opts
	o5.Target = "bench-fig5"
	if _, err := exp.Sweep(o5, "campaign fig5", fig5); err != nil {
		b.Fatal(err)
	}
	o8 := opts
	o8.Target = "bench-fig8"
	if _, err := exp.Sweep(o8, "campaign fig8", fig8); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCampaignUncached measures the multi-figure campaign with
// caching disabled: every cell simulates, including the baseline and
// hydra cells both sweeps share. The cached variant below is the same
// campaign; the ratio between the two is the result-cache speedup the
// perf gate tracks. No ReportAllocs on this pair: campaign allocation
// counts jitter with pool/watchdog goroutine scheduling.
func BenchmarkCampaignUncached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		campaignSweeps(b, nil)
	}
}

// BenchmarkCampaignCached measures the same campaign against a warm
// in-memory cache (warmed once before the timer): all cells replay,
// which is what the second-and-later targets of `experiments all` and
// re-runs under -cache-dir see.
func BenchmarkCampaignCached(b *testing.B) {
	cache, err := harness.NewCellCache("")
	if err != nil {
		b.Fatal(err)
	}
	cache.Decode = exp.DecodeResult
	campaignSweeps(b, cache) // warm every cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		campaignSweeps(b, cache)
	}
}

// BenchmarkFigure1b regenerates the motivation tradeoff plot: SRAM
// overhead vs slowdown, with Hydra in the goal corner.
func BenchmarkFigure1b(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		rep, err := exp.Figure1b(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		out = rep.Format()
	}
	b.Log("\n" + out)
}
