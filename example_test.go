package hydra_test

import (
	"fmt"

	hydra "repro"
)

// Protect a memory controller model in a few lines: wrap the tracker
// in the victim-refresh policy and feed it every row activation. When
// a row's estimated activation count crosses the tracker threshold,
// Activate returns the blast-radius neighbours that must be refreshed.
func Example() {
	tracker := hydra.MustNew(hydra.DefaultConfig(), hydra.NullSink{})
	refresher := hydra.NewRefresher(tracker, hydra.DefaultBlast, 1<<16)

	aggressor := hydra.Row(4242)
	refreshes := 0
	for i := 0; i < 600; i++ { // hammer past T_RH = 500
		victims := refresher.Activate(aggressor)
		refreshes += len(victims)
	}
	fmt.Printf("victim rows refreshed: %d\n", refreshes)
	fmt.Printf("aggressor estimate after mitigation: %d\n", tracker.EstimatedCount(aggressor))
	// Output:
	// victim rows refreshed: 8
	// aggressor estimate after mitigation: 100
}

// ConfigForThreshold scales Hydra's structures with the row-hammer
// threshold: halving T_RH doubles the tables (Section 6.3), yet the
// SRAM cost stays tens of KB where perfect per-row tracking would
// need megabytes.
func ExampleConfigForThreshold() {
	for _, trh := range []int{500, 250, 125} {
		cfg := hydra.ConfigForThreshold(trh)
		s := cfg.Storage()
		fmt.Printf("T_RH=%-4d SRAM=%3d KB (GCT %d entries, RCC %d entries)\n",
			trh, s.TotalBytes/1024, cfg.GCTEntries, cfg.RCCEntries)
	}
	// Output:
	// T_RH=500  SRAM= 56 KB (GCT 32768 entries, RCC 8192 entries)
	// T_RH=250  SRAM=110 KB (GCT 65536 entries, RCC 16384 entries)
	// T_RH=125  SRAM=216 KB (GCT 131072 entries, RCC 32768 entries)
}

// Victims enumerates the blast-radius neighbourhood of an aggressor,
// clamped to the bank, ordered nearest-first: the rows a mitigation
// must refresh.
func ExampleVictims() {
	fmt.Println(hydra.Victims(1000, hydra.DefaultBlast, 1<<16))
	fmt.Println(hydra.Victims(0, hydra.DefaultBlast, 1<<16)) // bank edge
	// Output:
	// [999 1001 998 1002]
	// [1 2]
}

// CountingSink measures the DRAM traffic cost of the tracker's
// RCT metadata: each counted read or write is one DRAM line access
// the memory controller must issue on Hydra's behalf.
func ExampleCountingSink() {
	sink := &hydra.CountingSink{}
	tracker := hydra.MustNew(hydra.DefaultConfig(), sink)
	for row := hydra.Row(0); row < 300; row++ {
		for i := 0; i < 300; i++ { // push every group past T_G
			tracker.Activate(row)
		}
	}
	fmt.Printf("RCT line reads=%d writes=%d\n", sink.Reads, sink.Writes)
	// Output:
	// RCT line reads=306 writes=6
}
